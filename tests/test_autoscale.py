"""Autoscale control plane: policy validation, controller feedback
logic, serve-loop membership changes, and the scaling-timeline /
node-seconds invariants the benchmark relies on."""

import pytest

from repro.cluster import (
    DRAIN,
    JOIN,
    PROVISION,
    RETIRE,
    RETIRED,
    AutoscaleController,
    AutoscalePolicy,
    Cluster,
    NodeSpec,
    homogeneous,
    make_router,
    sweep_autoscale,
)
from repro.hardware.platform import THREADRIPPER_3990X
from repro.serving.server import ServingStack
from repro.serving.workload import WorkloadSpec, scenario_queries

MIX = WorkloadSpec(name="mix2", entries=(("mobilenet_v2", 1.0),
                                         ("googlenet", 1.0)))

TEMPLATE = NodeSpec(name="auto", cpu=THREADRIPPER_3990X)


def fast_policy(**overrides) -> AutoscalePolicy:
    """Control constants sized to sub-second simulated streams."""
    defaults = dict(
        template=TEMPLATE, min_nodes=1, max_nodes=4,
        tick_s=0.02, warmup_s=0.04, cooldown_s=0.08,
        up_pressure=0.45, down_pressure=0.20,
        up_backlog_per_core=0.05, down_backlog_per_core=0.015,
        up_violation_rate=0.10, down_violation_rate=0.02,
        slo_window_s=0.15, panic_severity=2.0, quiet_ticks=3)
    defaults.update(overrides)
    return AutoscalePolicy(**defaults)


class TestAutoscalePolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            fast_policy(min_nodes=0)
        with pytest.raises(ValueError):
            fast_policy(min_nodes=3, max_nodes=2)
        with pytest.raises(ValueError):
            fast_policy(tick_s=0.0)
        with pytest.raises(ValueError):
            fast_policy(warmup_s=-1.0)
        with pytest.raises(ValueError):
            fast_policy(panic_severity=1.0)
        with pytest.raises(ValueError):
            fast_policy(quiet_ticks=0)

    def test_hysteresis_bands_must_be_ordered(self):
        # down >= up leaves no hysteresis gap: rejected per signal.
        with pytest.raises(ValueError):
            fast_policy(up_pressure=0.3, down_pressure=0.3)
        with pytest.raises(ValueError):
            fast_policy(up_backlog_per_core=0.02,
                        down_backlog_per_core=0.05)
        with pytest.raises(ValueError):
            fast_policy(up_violation_rate=0.1, down_violation_rate=-0.1)


class _StubEngine:
    def __init__(self, outstanding: int) -> None:
        self.outstanding = outstanding
        self.queued = outstanding


class _StubNode:
    def __init__(self, index: int, cores: int = 64, outstanding: int = 0,
                 pressure: float = 0.0) -> None:
        self.index = index
        self.cores = cores
        self.engine = _StubEngine(outstanding)
        self._pressure = pressure

    def pressure_estimate(self) -> float:
        return self._pressure


class _StubCompletion:
    def __init__(self, finished_s: float, satisfied: bool) -> None:
        self.finished_s = finished_s
        self.satisfied = satisfied


class TestAutoscaleController:
    def test_violation_window_evicts(self):
        controller = AutoscaleController(fast_policy(slo_window_s=1.0))
        controller.observe_completions([
            _StubCompletion(0.0, False),
            _StubCompletion(0.9, True),
            _StubCompletion(1.4, True),
        ])
        # At t=1.5 the miss at 0.0 has left the window: 0 of 2 missed.
        assert controller.violation_rate(1.5) == 0.0
        controller.observe_completions([_StubCompletion(1.6, False)])
        assert controller.violation_rate(1.7) == pytest.approx(1 / 3)

    def test_violation_window_evicts_out_of_order_batches(self):
        """Batches arrive per node, so the deque is not time-sorted: an
        expired entry behind an in-window head must still evict."""
        controller = AutoscaleController(fast_policy(slo_window_s=1.0))
        controller.observe_completions([_StubCompletion(2.0, True)])
        # A slower node reports its *older* completions afterwards.
        controller.observe_completions([_StubCompletion(0.5, False),
                                        _StubCompletion(1.9, True)])
        # Horizon at 1.1: the 0.5 miss is expired even though it sits
        # behind the in-window 2.0 head.
        assert controller.violation_rate(2.1) == 0.0

    def test_scale_up_on_backlog(self):
        controller = AutoscaleController(fast_policy(step=1))
        # backlog per core 10/64 > 0.05 band, severity < panic.
        nodes = [_StubNode(0, outstanding=5)]
        assert controller.decide(0.0, nodes, warming=0) == 1

    def test_panic_jumps_to_max_and_bypasses_cooldown(self):
        controller = AutoscaleController(fast_policy(max_nodes=5))
        nodes = [_StubNode(0, outstanding=1)]
        assert controller.decide(0.0, nodes, warming=0) == 0
        # Mild breach right after an action is held by the cool-down...
        controller._last_action_s = 0.0
        mild = [_StubNode(0, outstanding=5)]
        assert controller.decide(0.01, mild, warming=0) == 0
        # ...a panic-severity breach is not, and fills to max_nodes.
        flooded = [_StubNode(0, outstanding=64)]
        assert controller.decide(0.02, flooded, warming=0) == 4

    def test_scale_down_needs_sustained_quiet(self):
        controller = AutoscaleController(fast_policy(quiet_ticks=3))
        nodes = [_StubNode(0), _StubNode(1)]
        assert controller.decide(1.00, nodes, warming=0) == 0
        assert controller.decide(1.02, nodes, warming=0) == 0
        assert controller.decide(1.04, nodes, warming=0) == -1
        # The streak resets after the action.
        assert controller.decide(1.20, nodes, warming=0) == 0

    def test_no_scale_down_below_min_or_while_warming(self):
        controller = AutoscaleController(fast_policy(min_nodes=1,
                                                     quiet_ticks=1))
        single = [_StubNode(0)]
        assert controller.decide(1.0, single, warming=0) == 0
        pair = [_StubNode(0), _StubNode(1)]
        assert controller.decide(2.0, pair, warming=1) == 0
        assert controller.decide(3.0, pair, warming=0) == -1

    def test_no_scale_up_past_max(self):
        controller = AutoscaleController(fast_policy(max_nodes=2))
        flooded = [_StubNode(0, outstanding=64), _StubNode(1, outstanding=64)]
        assert controller.decide(0.0, flooded, warming=0) == 0
        assert controller.decide(1.0, flooded[:1], warming=1) == 0


class TestRoundRobinMembership:
    """Satellite fix: the cursor tracks node ids, not list positions."""

    def test_static_fleet_cycle_unchanged(self):
        router = make_router("round_robin")
        nodes = [_StubNode(i) for i in range(3)]
        picks = [router.choose(nodes, None, 0.0).index for _ in range(7)]
        assert picks == [0, 1, 2, 0, 1, 2, 0]

    def test_member_removal_does_not_skip_or_double_serve(self):
        router = make_router("round_robin")
        nodes = [_StubNode(i) for i in range(3)]
        assert router.choose(nodes, None, 0.0).index == 0
        assert router.choose(nodes, None, 0.0).index == 1
        # Node 1 drains: the cycle continues at 2, then wraps to 0 —
        # the old position-modulo counter would have repeated node 2.
        survivors = [nodes[0], nodes[2]]
        picks = [router.choose(survivors, None, 0.0).index
                 for _ in range(4)]
        assert picks == [2, 0, 2, 0]

    def test_member_join_enters_rotation_after_cursor(self):
        router = make_router("round_robin")
        nodes = [_StubNode(0), _StubNode(1)]
        assert router.choose(nodes, None, 0.0).index == 0
        grown = nodes + [_StubNode(2)]
        picks = [router.choose(grown, None, 0.0).index for _ in range(4)]
        assert picks == [1, 2, 0, 1]


@pytest.fixture(scope="module")
def diurnal_run(light_stack):
    """One autoscaled diurnal serve with scale-ups and scale-downs."""
    policy = fast_policy(min_nodes=1, max_nodes=3)
    cluster = Cluster(light_stack, homogeneous(1),
                      router="pressure_aware", autoscale=policy)
    report = cluster.report(MIX, qps=400, count=300, seed=5,
                            scenario="diurnal")
    return cluster, report


class TestAutoscaleServe:
    def test_timeline_present_and_chronological(self, diurnal_run):
        _, report = diurnal_run
        timeline = report.scaling_timeline
        assert timeline, "diurnal load at 400 QPS must trigger scaling"
        times = [event.time_s for event in timeline]
        assert times == sorted(times)
        assert {event.action for event in timeline} <= {
            PROVISION, JOIN, DRAIN, RETIRE}

    def test_provision_join_pairing_and_bounds(self, diurnal_run):
        _, report = diurnal_run
        timeline = report.scaling_timeline
        provisions = [e.node for e in timeline if e.action == PROVISION]
        joins = [e.node for e in timeline if e.action == JOIN]
        assert sorted(provisions) == sorted(joins)
        drains = [e.node for e in timeline if e.action == DRAIN]
        retires = [e.node for e in timeline if e.action == RETIRE]
        assert sorted(drains) == sorted(retires)
        assert 1 <= report.peak_live_nodes <= 3
        for event in timeline:
            assert 1 <= event.live_nodes <= 3

    def test_node_seconds_reconcile(self, diurnal_run):
        _, report = diurnal_run
        assert report.node_seconds == pytest.approx(
            sum(node.node_seconds for node in report.nodes))
        assert report.core_seconds_available == pytest.approx(
            sum(node.cores * node.node_seconds for node in report.nodes))
        assert 0.0 < report.utilization <= 1.0
        for node in report.nodes:
            assert node.node_seconds == pytest.approx(
                node.retired_s - node.provisioned_s)
            assert node.node_seconds <= report.span_s + 1e-9

    def test_drain_completes_in_flight_work(self, diurnal_run):
        cluster, report = diurnal_run
        retired = [n for n in report.nodes if n.final_state == RETIRED]
        assert retired, "the diurnal trough must retire at least one node"
        for node in retired:
            assert node.completed == node.assigned
        # Retired engines were not driven past their retirement.
        by_name = {n.spec.name: n for n in cluster.last_nodes}
        for node in retired:
            engine = by_name[node.name].engine
            assert engine.outstanding == 0

    def test_totals_reconcile_across_membership_change(self, diurnal_run):
        _, report = diurnal_run
        assert report.offered == report.admitted + report.shed
        assert report.admitted == sum(n.assigned for n in report.nodes)
        assert report.completed == sum(n.completed for n in report.nodes)
        assert report.satisfied == sum(n.satisfied for n in report.nodes)
        assert report.completed == report.admitted

    def test_deterministic_per_seed(self, light_stack):
        policy = fast_policy(min_nodes=1, max_nodes=3)

        def run():
            cluster = Cluster(light_stack, homogeneous(1),
                              router="pressure_aware", autoscale=policy)
            return cluster.report(MIX, qps=400, count=150, seed=9,
                                  scenario="diurnal")

        first, second = run(), run()
        assert first == second
        assert first.scaling_timeline == second.scaling_timeline

    def test_static_fleet_report_shape(self, light_stack):
        cluster = Cluster(light_stack, homogeneous(2),
                          router="pressure_aware")
        report = cluster.report(MIX, qps=300, count=60, seed=3)
        assert report.scaling_timeline == ()
        assert report.peak_live_nodes == 2
        assert report.node_seconds == pytest.approx(2 * report.span_s)
        assert all(n.final_state == "live" for n in report.nodes)

    def test_elastic_beats_static_node_seconds(self, light_stack):
        points = sweep_autoscale(
            light_stack, homogeneous(3), homogeneous(1),
            fast_policy(min_nodes=1, max_nodes=3), MIX,
            [("diurnal", 350.0)], count=200, seed=5)
        (point,) = points
        assert point.node_seconds_ratio < 1.0
        assert point.autoscaled.offered == point.static.offered
        assert point.scenario == "diurnal"

    def test_warming_node_reuses_compile_pass(self, light_stack):
        builds_before = light_stack.artifact_builds
        policy = fast_policy(min_nodes=1, max_nodes=3)
        cluster = Cluster(light_stack, homogeneous(1),
                          router="pressure_aware", autoscale=policy)
        report = cluster.report(MIX, qps=450, count=150, seed=5,
                                scenario="flash_crowd")
        assert any(e.action == PROVISION
                   for e in report.scaling_timeline)
        assert light_stack.artifact_builds == builds_before == 1


class TestPlanCacheBound:
    """Satellite fix: the scheduler planning memos are size-capped."""

    def test_required_cache_bounded_and_results_identical(self,
                                                          light_stack):
        queries_a = scenario_queries(light_stack.compiled, "bursty", 300,
                                     120, seed=4, spec=MIX)
        queries_b = scenario_queries(light_stack.compiled, "bursty", 300,
                                     120, seed=4, spec=MIX)

        from repro.runtime.engine import Engine
        from repro.scheduling.veltair import VeltairScheduler

        unbounded = VeltairScheduler(light_stack.cost_model,
                                     light_stack.profiles, proxy=None)
        engine_a = Engine(light_stack.cost_model,
                          price_cache=light_stack.price_cache)
        done_a = engine_a.run(queries_a, unbounded)
        assert len(unbounded._required_cache) > 8  # the memo is live

        tiny = VeltairScheduler(light_stack.cost_model,
                                light_stack.profiles, proxy=None,
                                plan_cache_entries=8)
        engine_b = Engine(light_stack.cost_model,
                          price_cache=light_stack.price_cache)
        done_b = engine_b.run(queries_b, tiny)
        # Steady state: the capped memo never exceeds its bound, and
        # eviction only forces recomputes — results are bit-identical.
        assert len(tiny._required_cache) <= 8
        assert len(tiny._block_req_cache) <= 8
        assert tiny._required_cache.evictions > 0
        finished_a = {q.query_id: q.finished_s for q in done_a}
        finished_b = {q.query_id: q.finished_s for q in done_b}
        assert finished_a == finished_b

    def test_stack_knob_reaches_schedulers(self):
        stack = ServingStack(models=["mobilenet_v2"], trials=64,
                             use_proxy=False, plan_cache_entries=32)
        for policy in ("veltair_full", "veltair_as", "veltair_ac"):
            scheduler = stack.make_scheduler(policy)
            cache = getattr(scheduler, "_required_cache", None)
            if cache is None:
                cache = scheduler._block_req_cache
            assert cache.max_entries == 32
