"""Scenario-library coverage (PR 3 satellite).

Pins the contracts of :mod:`repro.workloads`: bit-determinism of every
arrival generator under a fixed seed, empirical-rate accuracy of the
normalised shapes, bit-identity of the ``"poisson"`` scenario with the
legacy generator, trace record -> save -> load -> replay round trips
(single-node and fleet), and the scenario threading through the
experiment drivers.
"""

import dataclasses

import numpy as np
import pytest

from repro.cluster import Cluster, homogeneous
from repro.config import make_rng
from repro.serving.experiments import capacity, sweep_qps
from repro.serving.metrics import summarize
from repro.serving.workload import (
    WorkloadSpec,
    poisson_queries,
    scenario_queries,
    uniform_queries,
)
from repro.workloads import (
    ArrivalTrace,
    DiurnalArrivals,
    FlashCrowdArrivals,
    MMPPArrivals,
    PoissonArrivals,
    ScenarioSpec,
    TenantChurnArrivals,
    TraceArrivals,
    UniformArrivals,
    get_scenario,
    record_trace,
    register_scenario,
    scenario_names,
)

_SPEC = WorkloadSpec(name="pair", entries=(("mobilenet_v2", 2.0),
                                           ("googlenet", 1.0)))

_PROCESSES = (
    PoissonArrivals(),
    UniformArrivals(),
    MMPPArrivals(),
    DiurnalArrivals(),
    FlashCrowdArrivals(),
    TenantChurnArrivals(),
)


class TestArrivalDeterminism:
    @pytest.mark.parametrize("process", _PROCESSES,
                             ids=lambda p: p.kind)
    def test_fixed_seed_reproduces_bitwise(self, process):
        first = process.sample_times(140.0, 2500, make_rng(7))
        second = process.sample_times(140.0, 2500, make_rng(7))
        assert np.array_equal(first, second)

    @pytest.mark.parametrize("process", _PROCESSES[:1] + _PROCESSES[2:],
                             ids=lambda p: p.kind)
    def test_seed_changes_stream(self, process):
        first = process.sample_times(140.0, 500, make_rng(7))
        other = process.sample_times(140.0, 500, make_rng(8))
        assert not np.array_equal(first, other)

    @pytest.mark.parametrize("process", _PROCESSES,
                             ids=lambda p: p.kind)
    def test_times_increase_from_zero(self, process):
        times = process.sample_times(90.0, 800, make_rng(3))
        assert times[0] > 0.0
        assert np.all(np.diff(times) >= 0.0)

    @pytest.mark.parametrize("process", _PROCESSES,
                             ids=lambda p: p.kind)
    def test_rejects_bad_load(self, process):
        with pytest.raises(ValueError):
            process.sample_times(0.0, 10, make_rng(0))
        with pytest.raises(ValueError):
            process.sample_times(50.0, 0, make_rng(0))


class TestEmpiricalRates:
    """The shapes are normalised: long-run mean rate == requested qps."""

    def test_mmpp_rate_accuracy(self):
        # Many cycles per stream shrink the fixed-count stopping bias.
        process = MMPPArrivals(cycles=150.0)
        times = process.sample_times(200.0, 40000, make_rng(11))
        assert 40000 / times[-1] == pytest.approx(200.0, rel=0.04)

    def test_mmpp_rate_mix_solves_to_mean(self):
        process = MMPPArrivals(burst_ratio=9.0, burst_fraction=0.3)
        calm, burst = process.state_rates(100.0)
        assert burst == pytest.approx(9.0 * calm)
        assert calm * 0.7 + burst * 0.3 == pytest.approx(100.0)

    def test_diurnal_rate_accuracy(self):
        process = DiurnalArrivals(amplitude=0.7, periods=40.0)
        times = process.sample_times(150.0, 40000, make_rng(13))
        assert 40000 / times[-1] == pytest.approx(150.0, rel=0.03)

    def test_tenant_churn_rate_accuracy(self):
        # The population wanders slowly, so one stream's N/T estimate is
        # noisy; the *expected* rate (averaged over seeds) is qps.
        process = TenantChurnArrivals(mean_tenants=16, turnovers=100.0)
        rates = []
        for seed in range(6):
            times = process.sample_times(120.0, 20000, make_rng(seed))
            rates.append(20000 / times[-1])
        assert sum(rates) / len(rates) == pytest.approx(120.0, rel=0.05)

    def test_mmpp_actually_bursts(self):
        # Gap variance far above Poisson's (CV > 1 is the burst signal).
        process = MMPPArrivals(burst_ratio=10.0, burst_fraction=0.15)
        gaps = np.diff(process.sample_times(100.0, 20000, make_rng(5)))
        cv = gaps.std() / gaps.mean()
        assert cv > 1.3

    def test_flash_crowd_spikes_inside_window(self):
        process = FlashCrowdArrivals(spike_ratio=10.0, start_frac=0.4,
                                     width_frac=0.2)
        qps, count = 100.0, 20000
        times = process.sample_times(qps, count, make_rng(9))
        start, stop = process.spike_window(qps, count)
        # The spike window is sized against the *expected* span; the
        # extra spike arrivals end the fixed-count stream early, so only
        # the realised overlap counts.
        stop = min(stop, float(times[-1]))
        inside = np.sum((times >= start) & (times < stop))
        inside_rate = inside / (stop - start)
        outside_span = times[-1] - (stop - start)
        outside_rate = (len(times) - inside) / outside_span
        assert inside_rate > 4.0 * outside_rate

    def test_uniform_consumes_no_randomness(self):
        rng = make_rng(1)
        before = rng.bit_generator.state
        UniformArrivals().sample_times(50.0, 100, rng)
        assert rng.bit_generator.state == before


class TestArrivalValidation:
    def test_mmpp_params(self):
        with pytest.raises(ValueError):
            MMPPArrivals(burst_ratio=1.0)
        with pytest.raises(ValueError):
            MMPPArrivals(burst_fraction=1.0)
        with pytest.raises(ValueError):
            MMPPArrivals(cycles=0.0)

    def test_diurnal_params(self):
        with pytest.raises(ValueError):
            DiurnalArrivals(amplitude=1.0)
        with pytest.raises(ValueError):
            DiurnalArrivals(periods=0.0)

    def test_flash_crowd_params(self):
        with pytest.raises(ValueError):
            FlashCrowdArrivals(spike_ratio=0.5)
        with pytest.raises(ValueError):
            FlashCrowdArrivals(width_frac=0.0)

    def test_trace_arrivals(self):
        with pytest.raises(ValueError):
            TraceArrivals(times=())
        with pytest.raises(ValueError):
            TraceArrivals(times=(2.0, 1.0))
        process = TraceArrivals(times=(0.5, 1.0, 1.5))
        with pytest.raises(ValueError):
            process.sample_times(10.0, 4, make_rng(0))
        out = process.sample_times(10.0, 2, make_rng(0))
        assert list(out) == [0.5, 1.0]


class TestScenarioSpec:
    def test_poisson_scenario_is_bit_identical_to_legacy(self,
                                                         light_stack):
        legacy = poisson_queries(light_stack.compiled, _SPEC, 150.0, 400,
                                 seed=17)
        scenario = scenario_queries(light_stack.compiled, "poisson",
                                    150.0, 400, seed=17, spec=_SPEC)
        assert ([(q.arrival_s, q.model.name, q.qos_s) for q in legacy]
                == [(q.arrival_s, q.model.name, q.qos_s)
                    for q in scenario])

    def test_uniform_scenario_matches_uniform_queries(self, light_stack):
        legacy = uniform_queries(light_stack.compiled, "mobilenet_v2",
                                 80.0, 50)
        single = WorkloadSpec(name="solo",
                              entries=(("mobilenet_v2", 1.0),))
        scenario = scenario_queries(light_stack.compiled, "uniform",
                                    80.0, 50, seed=17, spec=single)
        assert ([q.arrival_s for q in legacy]
                == [q.arrival_s for q in scenario])

    def test_qos_scaling_applies_per_class(self, light_stack):
        tight = ScenarioSpec(name="tight-light",
                             qos_scale=(("light", 0.5),))
        queries = scenario_queries(light_stack.compiled, tight, 100.0,
                                   20, seed=3, spec=_SPEC)
        from repro.models.registry import get_entry
        for query in queries:
            entry = get_entry(query.model.name)
            expected = entry.qos_s * (0.5 if entry.workload_class
                                      == "light" else 1.0)
            assert query.qos_s == pytest.approx(expected)

    def test_bundled_workload_wins(self, light_stack):
        bundled = ScenarioSpec(
            name="solo-bundle",
            workload=WorkloadSpec(name="solo",
                                  entries=(("googlenet", 1.0),)))
        queries = scenario_queries(light_stack.compiled, bundled, 90.0,
                                   30, seed=5, spec=_SPEC)
        assert {q.model.name for q in queries} == {"googlenet"}

    def test_mix_agnostic_scenario_requires_spec(self, light_stack):
        with pytest.raises(ValueError, match="bundles no workload"):
            scenario_queries(light_stack.compiled, "bursty", 90.0, 30)

    def test_rejects_unknown_class_or_scale(self):
        with pytest.raises(ValueError):
            ScenarioSpec(name="bad", qos_scale=(("warp", 2.0),))
        with pytest.raises(ValueError):
            ScenarioSpec(name="bad", qos_scale=(("light", 0.0),))

    def test_registry_contents_and_unknown(self):
        names = scenario_names()
        for expected in ("poisson", "bursty", "diurnal", "flash_crowd",
                         "tenant_churn", "prod_day", "launch_spike"):
            assert expected in names
        with pytest.raises(KeyError, match="unknown scenario"):
            get_scenario("does-not-exist")
        with pytest.raises(ValueError, match="already registered"):
            register_scenario(get_scenario("poisson"))

    def test_with_workload_bundles_and_renames(self):
        combined = get_scenario("bursty").with_workload(_SPEC)
        assert combined.workload == _SPEC
        assert "bursty" in combined.name and "pair" in combined.name


class TestTraceRoundTrip:
    def _stream(self, light_stack, count=150):
        return scenario_queries(light_stack.compiled, "bursty", 120.0,
                                count, seed=29, spec=_SPEC)

    def test_save_load_is_bit_identical(self, light_stack, tmp_path):
        trace = record_trace(self._stream(light_stack), "roundtrip",
                             meta={"seed": 29})
        loaded = ArrivalTrace.load(trace.save(tmp_path / "t.json"))
        assert loaded == trace  # frozen dataclass equality: exact floats

    def test_single_node_replay_equals_direct(self, light_stack,
                                              tmp_path):
        trace = record_trace(self._stream(light_stack), "roundtrip")
        loaded = ArrivalTrace.load(trace.save(tmp_path / "t.json"))

        direct, engine_a = light_stack.run("veltair_full",
                                           self._stream(light_stack))
        replayed, engine_b = light_stack.run(
            "veltair_full", loaded.replay(light_stack.compiled))
        report_a = summarize(direct, engine_a.metrics, 120.0)
        report_b = summarize(replayed, engine_b.metrics, 120.0)
        for field in dataclasses.fields(report_a):
            assert (getattr(report_a, field.name)
                    == getattr(report_b, field.name)), field.name

    def test_cluster_replay_equals_direct(self, light_stack, tmp_path):
        trace = record_trace(self._stream(light_stack, count=120),
                             "fleet-roundtrip")
        loaded = ArrivalTrace.load(trace.save(tmp_path / "t.json"))
        fleet = homogeneous(2)
        direct = Cluster(light_stack, fleet).serve(
            self._stream(light_stack, count=120), offered_qps=120.0)
        replay = Cluster(light_stack, fleet).serve(
            loaded.replay(light_stack.compiled), offered_qps=120.0)
        assert direct.satisfaction_rate == replay.satisfaction_rate
        assert direct.goodput_qps == replay.goodput_qps
        assert direct.completed == replay.completed
        assert direct.class_p99_s == replay.class_p99_s

    def test_replay_validates_models_and_truncation(self, light_stack):
        trace = record_trace(self._stream(light_stack, count=10), "t")
        with pytest.raises(KeyError, match="uncompiled"):
            trace.replay({})
        with pytest.raises(ValueError, match="holds"):
            trace.replay(light_stack.compiled, count=11)
        assert len(trace.replay(light_stack.compiled, count=4)) == 4

    def test_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"schema": "other/9", "name": "x", '
                        '"entries": []}')
        with pytest.raises(ValueError, match="unsupported trace schema"):
            ArrivalTrace.load(path)

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            ArrivalTrace(name="none", entries=())


class TestExperimentThreading:
    def test_sweep_default_equals_poisson_scenario(self, light_stack):
        plain = sweep_qps(light_stack, "veltair_full", _SPEC,
                          [100.0, 180.0], 100, seed=17)
        scenario = sweep_qps(light_stack, "veltair_full", _SPEC,
                             [100.0, 180.0], 100, seed=17,
                             scenario="poisson")
        assert plain == scenario

    def test_capacity_accepts_scenario_and_name(self, light_stack):
        by_name = capacity(light_stack, "veltair_full", _SPEC, 80,
                           tolerance_qps=60.0, low_qps=5.0,
                           high_qps=300.0, seed=17, scenario="bursty")
        by_spec = capacity(light_stack, "veltair_full", _SPEC, 80,
                           tolerance_qps=60.0, low_qps=5.0,
                           high_qps=300.0, seed=17,
                           scenario=get_scenario("bursty"))
        assert by_name.qps == by_spec.qps

    def test_scenario_excludes_uniform_flag(self, light_stack):
        with pytest.raises(ValueError, match="not both"):
            sweep_qps(light_stack, "veltair_full", _SPEC, [50.0], 50,
                      uniform=True, scenario="poisson")

    def test_stack_report_scenario(self, light_stack):
        default = light_stack.report("veltair_full", _SPEC, 120.0, 100,
                                     seed=17)
        poisson = light_stack.report("veltair_full", _SPEC, 120.0, 100,
                                     seed=17, scenario="poisson")
        bursty = light_stack.report("veltair_full", _SPEC, 120.0, 100,
                                    seed=17, scenario="bursty")
        assert default == poisson
        assert bursty != default

    def test_cluster_report_scenario(self, light_stack):
        fleet = homogeneous(2)
        default = Cluster(light_stack, fleet).report(_SPEC, 100.0, 80,
                                                     seed=17)
        poisson = Cluster(light_stack, fleet).report(
            _SPEC, 100.0, 80, seed=17, scenario="poisson")
        assert default.satisfaction_rate == poisson.satisfaction_rate
        assert default.goodput_qps == poisson.goodput_qps
