"""Engine-overhaul invariants: equivalence, monotonicity, heap bounds.

These tests pin the hot-path rework's contract:

* incremental repricing is an *optimization*, not a semantic change —
  per-policy ``ServingReport``s are identical (within 1e-9) with it on
  and off;
* block progress is monotone non-decreasing between grows;
* the event heap stays bounded by live work, not by pushed events;
* the shared pricing cache eliminates repeat cost-model pricing across
  runs without affecting results;
* compiled artifacts are bit-reproducible across processes (the
  ``hash()``-seeded search regression).
"""

from __future__ import annotations

import dataclasses
import os
import subprocess
import sys

import pytest

from repro.runtime.engine import Engine
from repro.runtime.pricing import PricingCache
from repro.serving.experiments import capacity, sweep_qps
from repro.serving.metrics import summarize
from repro.serving.workload import WorkloadSpec, poisson_queries

DUO_SPEC = WorkloadSpec(name="duo", entries=(("mobilenet_v2", 1.0),
                                             ("googlenet", 1.0)))


def _assert_reports_equal(a, b, tolerance=1e-9):
    for field in dataclasses.fields(a):
        va, vb = getattr(a, field.name), getattr(b, field.name)
        if isinstance(va, float):
            if va == vb:
                continue
            assert abs(va - vb) <= tolerance, (
                f"{field.name}: {va!r} != {vb!r}")
        else:
            assert va == vb, f"{field.name}: {va!r} != {vb!r}"


class TestIncrementalEquivalence:
    @pytest.mark.parametrize("policy", ["layerwise", "veltair_full"])
    def test_reports_identical_before_after(self, light_stack, policy):
        reports = {}
        for incremental in (False, True):
            queries = poisson_queries(light_stack.compiled, DUO_SPEC,
                                      400, 120, seed=7)
            completed, engine = light_stack.run(policy, queries,
                                                incremental=incremental)
            reports[incremental] = summarize(completed, engine.metrics,
                                             400)
        _assert_reports_equal(reports[False], reports[True])

    def test_incremental_strictly_cheaper(self, light_stack):
        counts = {}
        for incremental in (False, True):
            queries = poisson_queries(light_stack.compiled, DUO_SPEC,
                                      400, 120, seed=7)
            _, engine = light_stack.run("veltair_full", queries,
                                        incremental=incremental)
            counts[incremental] = (engine.metrics.finish_events_pushed,
                                   engine.metrics.repricings)
        assert counts[True][0] < counts[False][0]
        assert counts[True][1] < counts[False][1]


class _ProgressRecorder:
    """Scheduler wrapper that snapshots per-task progress each call."""

    def __init__(self, inner):
        self.inner = inner
        self.history: dict[int, list[float]] = {}

    def schedule(self, engine):
        for task_id, block in engine.running.items():
            self.history.setdefault(task_id, []).append(block.progress)
        self.inner.schedule(engine)


class TestProgressMonotonicity:
    def test_monotone_without_grows(self, light_stack):
        """With a no-grow policy progress never decreases at all."""
        queries = poisson_queries(light_stack.compiled, DUO_SPEC, 300, 60,
                                  seed=3)
        engine = Engine(light_stack.cost_model)
        recorder = _ProgressRecorder(light_stack.make_scheduler(
            "model_fcfs"))
        engine.run(queries, recorder)
        assert engine.metrics.grows == 0
        for samples in recorder.history.values():
            assert all(later >= earlier for earlier, later
                       in zip(samples, samples[1:]))

    def test_never_negative_with_grows(self, light_stack):
        """Grows charge overhead against progress but never below zero."""
        queries = poisson_queries(light_stack.compiled, DUO_SPEC, 400, 80,
                                  seed=3)
        engine = Engine(light_stack.cost_model)
        recorder = _ProgressRecorder(light_stack.make_scheduler(
            "layerwise"))
        engine.run(queries, recorder)
        assert engine.metrics.grows > 0  # the scenario exercises grows
        assert all(progress >= 0.0
                   for samples in recorder.history.values()
                   for progress in samples)


class TestHeapBounds:
    def test_heap_stays_bounded_by_live_blocks(self, light_stack):
        """Heap peak tracks live work, not the number of pushed events."""
        count = 400
        queries = poisson_queries(light_stack.compiled, DUO_SPEC, 500,
                                  count, seed=7)
        completed, engine = light_stack.run("veltair_full", queries)
        assert len(completed) == count
        metrics = engine.metrics
        # Live finish events <= concurrently running blocks <= cores;
        # compaction keeps stale entries within the same order, plus one
        # staged arrival and the compaction trigger slack.
        bound = 2 * (light_stack.cpu.cores + 1) + 64
        assert metrics.heap_peak <= bound
        assert metrics.heap_peak < metrics.finish_events_pushed
        assert engine._stale_finish >= 0


class TestSharedPricingCache:
    def test_cross_run_reuse_and_identity(self, light_stack):
        """Identical reruns price nothing new and change nothing."""
        def run_once():
            queries = poisson_queries(light_stack.compiled, DUO_SPEC,
                                      300, 60, seed=5)
            completed, engine = light_stack.run("veltair_full", queries)
            return (summarize(completed, engine.metrics, 300),
                    engine.metrics.prices_computed)

        first_report, _ = run_once()
        second_report, second_prices = run_once()
        assert second_prices == 0  # every block priced from the cache
        _assert_reports_equal(first_report, second_report, tolerance=0.0)

    def test_cache_bounds_and_stats(self):
        cache = PricingCache(max_entries=8)
        for index in range(20):
            cache.put(("key", index), float(index + 1))
        assert len(cache) <= 8
        assert cache.evictions > 0
        assert cache.get(("key", 19)) == 20.0
        assert cache.get(("missing",)) is None
        assert 0.0 < cache.hit_rate < 1.0

    def test_cache_rejects_none_and_bad_size(self):
        with pytest.raises(ValueError):
            PricingCache(max_entries=0)
        with pytest.raises(ValueError):
            PricingCache().put("key", None)

    def test_cache_bound_to_one_cost_model(self, light_stack,
                                           resnet_stack):
        """Keys omit the cost model, so cross-model sharing must fail."""
        cache = PricingCache()
        Engine(light_stack.cost_model, price_cache=cache)
        Engine(light_stack.cost_model, price_cache=cache)  # same: fine
        with pytest.raises(ValueError, match="different cost model"):
            Engine(resnet_stack.cost_model, price_cache=cache)


class TestSweepQps:
    def test_serial_matches_pointwise(self, light_stack):
        loads = [100.0, 250.0]
        swept = sweep_qps(light_stack, "veltair_full", DUO_SPEC, loads,
                          count=40, seed=9)
        for qps, report in zip(loads, swept):
            queries = poisson_queries(light_stack.compiled, DUO_SPEC, qps,
                                      40, seed=9)
            completed, engine = light_stack.run("veltair_full", queries)
            _assert_reports_equal(report,
                                  summarize(completed, engine.metrics,
                                            qps), tolerance=0.0)

    @pytest.mark.skipif(not hasattr(os, "fork"),
                        reason="fork start method unavailable")
    def test_parallel_matches_serial(self, light_stack):
        loads = [100.0, 200.0, 300.0, 400.0]
        serial = sweep_qps(light_stack, "veltair_full", DUO_SPEC, loads,
                           count=40, seed=9, workers=1)
        parallel = sweep_qps(light_stack, "veltair_full", DUO_SPEC, loads,
                             count=40, seed=9, workers=2)
        for a, b in zip(serial, parallel):
            _assert_reports_equal(a, b, tolerance=0.0)

    def test_uniform_requires_single_model(self, light_stack):
        with pytest.raises(ValueError):
            sweep_qps(light_stack, "veltair_full", DUO_SPEC, [100.0],
                      count=10, uniform=True)

    def test_empty_sweep(self, light_stack):
        assert sweep_qps(light_stack, "veltair_full", DUO_SPEC, [],
                         count=10) == []

    def test_capacity_workers_unchanged_at_batch_one(self, light_stack):
        serial = capacity(light_stack, "veltair_full", DUO_SPEC, count=40,
                          low_qps=20.0, high_qps=400.0,
                          tolerance_qps=50.0, seed=9)
        explicit = capacity(light_stack, "veltair_full", DUO_SPEC,
                            count=40, low_qps=20.0, high_qps=400.0,
                            tolerance_qps=50.0, seed=9, workers=1)
        assert serial.qps == explicit.qps
        _assert_reports_equal(serial.report, explicit.report,
                              tolerance=0.0)


class TestCompilationReproducibility:
    """Regression: per-layer search seeds must not depend on hash()."""

    SNIPPET = (
        "from repro.compiler.costmodel import CostModel\n"
        "from repro.compiler.multiversion import SinglePassCompiler\n"
        "from repro.hardware.platform import THREADRIPPER_3990X\n"
        "from repro.models.layers import Conv2D\n"
        "layer = Conv2D(name='probe', height=14, width=14,\n"
        "               in_channels=64, out_channels=64)\n"
        "entry = SinglePassCompiler(CostModel(THREADRIPPER_3990X),\n"
        "                           trials=64, seed=11).compile_layer(\n"
        "    layer, qos_budget_s=1e-3)\n"
        "print(repr(entry.versions))\n"
    )

    def test_identical_across_hash_seeds(self):
        outputs = []
        for hash_seed in ("0", "1"):
            env = dict(os.environ, PYTHONHASHSEED=hash_seed)
            env["PYTHONPATH"] = os.pathsep.join(
                filter(None, [os.path.join(os.path.dirname(__file__),
                                           os.pardir, "src"),
                              env.get("PYTHONPATH", "")]))
            result = subprocess.run(
                [sys.executable, "-c", self.SNIPPET], env=env,
                capture_output=True, text=True, timeout=120)
            assert result.returncode == 0, result.stderr
            outputs.append(result.stdout)
        assert outputs[0] == outputs[1]
