"""Fixture: simulated clocks and shadowed names must not fire."""
from datetime import timezone


class _Clock:
    def time(self):
        return 0.0


def simulate(engine):
    time = _Clock()          # local name shadowing the module
    now = engine.now         # simulated time
    local = time.time()      # method on a local object, not the module
    return now, local, timezone.utc
