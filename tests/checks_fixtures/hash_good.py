"""Fixture: crc32 keys and shadowed hash() must not fire."""
import zlib


def hash(data):  # shadows the builtin: calls below are this function
    return zlib.crc32(repr(data).encode())


def make_key(signature):
    return f"{hash(signature):08x}"


class Entry:
    def id(self):
        return "stable-name"
