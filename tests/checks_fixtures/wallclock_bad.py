"""Fixture: every statement below reads the host clock (4 findings)."""
import time
from datetime import datetime
from time import perf_counter as pc


def simulate():
    start = time.time()
    tick = pc()
    stamp = datetime.now()
    mono = time.monotonic_ns()
    return start, tick, stamp, mono
