"""Fixture: order-sensitive walks of unordered data (5 findings)."""
import os
from glob import iglob
from pathlib import Path


def walk(models, extra):
    for name in set(models):  # for-loop over a set
        yield name
    rows = [n for n in {"a", "b"} | set(extra)]  # comprehension source
    files = list(os.listdir("."))  # filesystem order materialised
    stale = [p for p in iglob("*.json")]  # glob order
    first = [*Path(".").glob("art_*.json")]  # star-unpacked Path.glob
    return rows, files, stale, first
