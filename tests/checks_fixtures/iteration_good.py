"""Fixture: sorted/aggregated/membership consumption must not fire."""
import os
from pathlib import Path


def walk(models, extra, manifest, owned):
    for name in sorted(set(models)):
        yield name
    count = len(set(extra))
    total = sum({1, 2, 3})
    present = "a" in set(models)
    files = sorted(os.listdir("."))
    entries = sorted(Path(".").glob("art_*.json"))
    for stale in sorted(set(manifest) - set(owned)):
        present = present and stale
    ordered = dict.fromkeys(models)
    return count, total, present, files, entries, ordered
