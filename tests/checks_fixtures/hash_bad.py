"""Fixture: salted/process-dependent identity used as key material (3)."""


def make_key(signature, node):
    seed = hash(signature) & 0xFFFF
    addr = id(node)
    order = sorted(signature, key=lambda item: hash(item))
    return seed, addr, order
