"""Fixture: hidden global RNG state (4 findings)."""
import random
import numpy as np
from random import shuffle


def draw(items):
    pick = random.choice(items)
    shuffle(items)
    np.random.seed(0)
    noise = np.random.rand(4)
    return pick, noise
