"""Fixture: malformed and unused suppressions are themselves findings."""
import time


def measure():
    start = time.time()  # repro: ignore[no-wallclock]
    simulated = 4.0  # repro: ignore[no-wallclock] -- nothing to silence here
    return start + simulated
