"""Fixture: unguarded emission and tracer state feedback (4 findings)."""


class Engine:
    def __init__(self, tracer=None):
        self.tracer = tracer
        self.now = 0.0

    def start(self, qid):
        self.tracer.event("start", self.now, qid=qid)  # unguarded

    def finish(self, qid):
        self._trace_finish(qid)  # helper call, unguarded

    def _trace_finish(self, qid):
        self.tracer.event("finish", self.now, qid=qid)  # ok: helper body

    def steer(self):
        # Telemetry feeding back into simulation control flow.
        backlog = len(self.tracer.records)
        if backlog > 10:
            return "shed"
        return self.tracer.records[0]
