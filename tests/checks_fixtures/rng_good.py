"""Fixture: explicit seeded generators must not fire."""
import numpy as np
from repro.config import make_rng, spawn_rng


def draw(seed, items):
    rng = make_rng(seed)
    child = spawn_rng(rng)
    explicit = np.random.default_rng(seed)
    pick = rng.choice(items)
    noise = child.random() + explicit.random()
    return pick, noise
