"""Fixture: every guard form the serving path uses must pass clean."""


class Engine:
    def __init__(self, tracer=None):
        self.tracer = tracer
        self.now = 0.0

    def start(self, qid):
        if self.tracer is not None:
            self.tracer.event("start", self.now, qid=qid)

    def finish(self, qid):
        if self.tracer is not None:
            self._trace_finish(qid)

    def _trace_finish(self, qid):
        self.tracer.event("finish", self.now, qid=qid)

    def tick(self, tracer):
        tracer and tracer.counter("engine", self.now, {"tick": 1})
        if tracer:
            tracer.event("tick", self.now)

    def early_out(self, tracer, qid):
        if tracer is None:
            return
        tracer.event("late", self.now, qid=qid)


def make_node(spec, tracer=None):
    return Engine(tracer=(tracer.bind(spec) if tracer is not None
                          else None))
