"""Fixture: real violations silenced by well-formed suppressions."""
import time


def measure():
    start = time.time()  # repro: ignore[no-wallclock] -- fixture exercises same-line suppression
    # repro: ignore[no-wallclock] -- fixture exercises line-above suppression
    stop = time.time()
    return stop - start
