"""Heterogeneous device backends: specs, cost model, fleet, routing.

The bit-identity of the CPU path is ratcheted by the benchmark suite;
these tests pin the structural contracts: the DeviceSpec family's
interface, accelerator cost-model behaviour, artifact-key stability for
CPU contexts, compile-once across mixed fleets, device-affinity routing
determinism, and the GACER baseline.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.cluster import (
    Cluster,
    ClusterSpec,
    DeviceAffinityRouter,
    NodeSpec,
    hetero_fleet,
    make_router,
)
from repro.compiler.artifacts import compiler_context, context_fingerprint
from repro.compiler.costmodel import CostModel, CostModelParams
from repro.compiler.multiversion import SinglePassCompiler
from repro.hardware import (
    DATACENTER_ACCEL_80,
    EDGE_NODE_32,
    THREADRIPPER_3990X,
    AcceleratorSpec,
    CpuSpec,
    DeviceSpec,
    datacenter_accelerator_80,
)
from repro.models.layers import Conv2D
from repro.runtime.engine import Engine
from repro.scheduling.gacer import GacerScheduler
from repro.serving.workload import scenario_queries
from repro.workloads import get_scenario


class TestDeviceSpecs:
    def test_cpu_is_a_device(self):
        assert isinstance(THREADRIPPER_3990X, DeviceSpec)
        assert THREADRIPPER_3990X.kind == "cpu"
        assert (THREADRIPPER_3990X.parallel_width
                == THREADRIPPER_3990X.cores)

    def test_accelerator_interface(self):
        accel = DATACENTER_ACCEL_80
        assert isinstance(accel, DeviceSpec)
        assert not isinstance(accel, CpuSpec)
        assert accel.kind == "accelerator"
        assert accel.cores == accel.sms == accel.parallel_width == 80
        assert accel.thread_spawn_s == accel.stream_launch_s
        assert accel.peak_flops > THREADRIPPER_3990X.peak_flops
        # Shared-cache sharing contract mirrors the CPU's llc_share.
        assert 0 < accel.llc_share(1) <= accel.llc_share(80)
        assert accel.llc_share(80) <= accel.llc.capacity_bytes

    def test_accelerator_validation(self):
        with pytest.raises(ValueError):
            dataclasses.replace(DATACENTER_ACCEL_80, sms=0)
        with pytest.raises(ValueError):
            dataclasses.replace(DATACENTER_ACCEL_80, simt_lanes=0)
        with pytest.raises(ValueError):
            dataclasses.replace(DATACENTER_ACCEL_80, min_occupancy_rate=1.5)

    def test_preset_factory_matches_singleton(self):
        assert datacenter_accelerator_80() == DATACENTER_ACCEL_80

    def test_cpu_field_schema_frozen(self):
        # The CpuSpec field set is part of the artifact-store key
        # schema; adding a field silently invalidates every stored CPU
        # artifact.  New knobs belong on new device kinds.
        assert [f.name for f in dataclasses.fields(CpuSpec)] == [
            "name", "cores", "frequency_hz", "flops_per_cycle",
            "sustained_fraction", "l2", "llc", "dram", "thread_spawn_s"]


class TestAcceleratorCostModel:
    @pytest.fixture(scope="class")
    def accel_model(self):
        return CostModel(DATACENTER_ACCEL_80)

    @pytest.fixture(scope="class")
    def wide_layer(self):
        return Conv2D(name="wide", height=28, width=28, in_channels=128,
                      out_channels=256)

    def test_cpu_knobs_resolve_to_params(self, cost_model):
        p = cost_model.params
        assert cost_model.kind == "cpu"
        assert cost_model.launch_s == p.layer_launch_s
        assert cost_model._sync_tax == p.sync_tax_per_core
        assert cost_model._dram_saturation == p.dram_saturation_cores
        assert cost_model._cache_sensitivity == p.cache_sensitivity

    def test_accel_knobs_resolve_to_spec(self, accel_model):
        accel = DATACENTER_ACCEL_80
        assert accel_model.kind == "accelerator"
        assert accel_model.device is accel_model.cpu
        assert accel_model.launch_s == accel.kernel_launch_s
        assert accel_model._sync_tax == accel.sync_tax_per_unit

    def test_spawn_overhead_is_stream_dispatch(self, accel_model,
                                               cost_model):
        assert (accel_model.spawn_overhead(8)
                == DATACENTER_ACCEL_80.stream_launch_s + 8.0e-6)
        assert cost_model.spawn_overhead(8) == 15e-6 + 1.2e-6 * 8

    def test_occupancy_penalises_few_chunks(self, accel_model,
                                            wide_layer):
        from repro.compiler.schedule import Schedule
        # Same tiles, one chunk vs many: the single-chunk kernel cannot
        # fill the SM's latency-hiding slots and must run further below
        # peak than the CPU's imbalance math alone would predict.
        narrow = Schedule(tile_m=64, tile_n=64, tile_k=64,
                          parallel_chunks=1, unroll=4, vector_lanes=8)
        wide = dataclasses.replace(narrow, parallel_chunks=256)
        slow = accel_model.latency(wide_layer, narrow, 1)
        fast = accel_model.latency(wide_layer, wide, 64)
        assert fast < slow
        occ_floor = DATACENTER_ACCEL_80.min_occupancy_rate
        iso_one = accel_model.execution(wide_layer, narrow, 1)
        # One chunk on one SM: occupancy is pinned near the floor.
        assert iso_one.compute_s > 0
        assert 0 < occ_floor < 1

    def test_deterministic(self, accel_model, wide_layer):
        from repro.compiler.schedule import Schedule
        schedule = Schedule(tile_m=32, tile_n=32, tile_k=64,
                            parallel_chunks=64, unroll=4, vector_lanes=8)
        a = accel_model.execution(wide_layer, schedule, 40, 0.3)
        b = CostModel(DATACENTER_ACCEL_80).execution(
            wide_layer, schedule, 40, 0.3)
        assert a == b


class TestArtifactKeys:
    def test_cpu_context_has_no_device_kind(self, cost_model):
        single = SinglePassCompiler(cost_model, trials=96, seed=1)
        context = compiler_context(single)
        assert "device_kind" not in context
        assert context["cpu"] == dataclasses.asdict(THREADRIPPER_3990X)
        assert context["params"] == dataclasses.asdict(
            CostModelParams())

    def test_accel_context_keyed_by_kind(self):
        accel_model = CostModel(DATACENTER_ACCEL_80)
        single = SinglePassCompiler(accel_model, trials=96, seed=1)
        context = compiler_context(single)
        assert context["device_kind"] == "accelerator"

    def test_fingerprints_distinct_per_device(self, cost_model):
        cpu_fp = context_fingerprint(compiler_context(
            SinglePassCompiler(cost_model, trials=96, seed=1)))
        accel_fp = context_fingerprint(compiler_context(
            SinglePassCompiler(CostModel(DATACENTER_ACCEL_80),
                               trials=96, seed=1)))
        assert cpu_fp != accel_fp
        # Stable across model instances: the CPU key cannot drift.
        again = context_fingerprint(compiler_context(
            SinglePassCompiler(CostModel(THREADRIPPER_3990X),
                               trials=96, seed=1)))
        assert cpu_fp == again


class TestClusterSpecs:
    def test_node_device_and_cpu_aliases(self):
        by_cpu = NodeSpec(name="n", cpu=THREADRIPPER_3990X)
        by_device = NodeSpec(name="n", device=THREADRIPPER_3990X)
        assert by_cpu == by_device
        assert by_cpu.cpu is by_cpu.device
        assert by_cpu.device_kind == "cpu"
        accel = NodeSpec(name="a", device=DATACENTER_ACCEL_80)
        assert accel.device_kind == "accelerator"
        assert accel.cores == 80

    def test_node_spec_rejects_conflicts(self):
        with pytest.raises(ValueError):
            NodeSpec(name="n")  # no device at all
        with pytest.raises(ValueError):
            NodeSpec(name="n", device=DATACENTER_ACCEL_80,
                     cpu=THREADRIPPER_3990X)
        # Agreeing aliases are fine.
        NodeSpec(name="n", device=EDGE_NODE_32, cpu=EDGE_NODE_32)

    def test_device_specs_distinct_in_fleet_order(self):
        fleet = hetero_fleet()
        specs = fleet.device_specs
        assert specs == (THREADRIPPER_3990X, DATACENTER_ACCEL_80,
                         EDGE_NODE_32)
        with pytest.warns(DeprecationWarning, match="cpu_specs"):
            assert fleet.cpu_specs == specs  # deprecated alias

    def test_duplicate_node_names_rejected(self):
        node = NodeSpec(name="dup", cpu=THREADRIPPER_3990X)
        with pytest.raises(ValueError, match="duplicate"):
            ClusterSpec(name="bad", nodes=(node, node))


class TestMixedFleetServing:
    @pytest.fixture(scope="class")
    def scenario(self):
        return get_scenario("batch_heavy")

    @pytest.fixture(scope="class")
    def small_fleet(self):
        return ClusterSpec(name="cpu+accel", nodes=(
            NodeSpec(name="cpu0", cpu=THREADRIPPER_3990X),
            NodeSpec(name="accel0", device=DATACENTER_ACCEL_80),
        ))

    def test_runtime_for_never_recompiles(self, hetero_stack):
        before = hetero_stack.artifact_builds
        cpu_rt = hetero_stack.runtime_for(THREADRIPPER_3990X)
        accel_rt = hetero_stack.runtime_for(DATACENTER_ACCEL_80)
        assert hetero_stack.artifact_builds == before == 1
        assert accel_rt is not cpu_rt
        assert accel_rt.device_kind == "accelerator"
        assert cpu_rt.device_kind == "cpu"
        # Memoised per spec.
        assert hetero_stack.runtime_for(DATACENTER_ACCEL_80) is accel_rt
        # Profiles differ per device economics but cover the same
        # compiled models.
        assert set(accel_rt.profiles) == set(cpu_rt.profiles)

    def test_mixed_fleet_serves_from_one_compile(self, hetero_stack,
                                                 small_fleet, scenario):
        queries = scenario_queries(hetero_stack.compiled, scenario,
                                   40.0, 60, seed=7)
        report = Cluster(hetero_stack, small_fleet,
                         router="device_affinity").serve(
            queries, offered_qps=40.0)
        assert hetero_stack.artifact_builds == 1
        assert report.completed == 60
        assert sum(n.assigned for n in report.nodes) == 60

    def test_device_affinity_deterministic(self, hetero_stack,
                                           small_fleet, scenario):
        def serve():
            queries = scenario_queries(hetero_stack.compiled, scenario,
                                       40.0, 60, seed=9)
            return Cluster(hetero_stack, small_fleet,
                           router="device_affinity").serve(
                queries, offered_qps=40.0)

        first, second = serve(), serve()
        assert first.satisfaction_rate == second.satisfaction_rate
        assert first.goodput_qps == second.goodput_qps
        assert ([n.assigned for n in first.nodes]
                == [n.assigned for n in second.nodes])

    def test_affinity_router_registered(self):
        router = make_router("device_affinity")
        assert isinstance(router, DeviceAffinityRouter)
        assert router.name == "device_affinity"


class TestGacer:
    def test_policy_registered(self, hetero_stack):
        scheduler = hetero_stack.make_scheduler("gacer")
        assert isinstance(scheduler, GacerScheduler)
        assert scheduler.min_concurrency <= scheduler.concurrency
        assert scheduler.concurrency <= scheduler.max_concurrency

    def test_validation(self, cost_model):
        with pytest.raises(ValueError):
            GacerScheduler(cost_model, {}, min_concurrency=0)
        with pytest.raises(ValueError):
            GacerScheduler(cost_model, {}, min_concurrency=4,
                           max_concurrency=2)
        with pytest.raises(ValueError):
            GacerScheduler(cost_model, {}, budget_headroom=0.0)

    def test_granularity_coarsens_as_concurrency_drops(self, cost_model):
        scheduler = GacerScheduler(cost_model, {}, coarse_block=12,
                                   max_concurrency=8)
        scheduler.concurrency = 1
        coarse = scheduler.block_layers
        scheduler.concurrency = 8
        fine = scheduler.block_layers
        assert coarse > fine >= 1

    def test_serves_and_is_deterministic(self, hetero_stack):
        scenario = get_scenario("batch_heavy")

        def run():
            queries = scenario_queries(hetero_stack.compiled, scenario,
                                       50.0, 80, seed=3)
            engine = Engine(hetero_stack.cost_model,
                            price_cache=hetero_stack.price_cache)
            scheduler = hetero_stack.make_scheduler("gacer")
            completed = engine.run(queries, scheduler)
            return completed, scheduler

        completed, scheduler = run()
        assert len(completed) == 80
        assert all(q.finished_s is not None for q in completed)
        assert (scheduler.min_concurrency <= scheduler.concurrency
                <= scheduler.max_concurrency)
        again, _ = run()
        assert ([q.finished_s for q in completed]
                == [q.finished_s for q in again])


@pytest.fixture(scope="module")
def hetero_stack():
    """The batch-heavy model trio with small search budgets."""
    from repro.serving.server import ServingStack
    return ServingStack(models=["mobilenet_v2", "resnet50",
                                "ssd_resnet34"],
                        trials=96, proxy_scenarios=60, seed=11)
