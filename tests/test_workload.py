"""Focused workload-generation coverage (PR 2 satellite).

`tests/test_serving.py` smoke-tests the workload module alongside the
facade; these tests pin the contracts precisely — validation errors,
bit-determinism of the Poisson stream under a fixed seed (arrival gaps
*and* model choices), and the inverse-QoS mixture arithmetic.
"""

import numpy as np
import pytest

from repro.models.registry import get_entry, model_names
from repro.serving.workload import (
    WorkloadSpec,
    full_mix,
    poisson_queries,
    uniform_queries,
)


class TestWorkloadSpecValidation:
    def test_empty_entries(self):
        with pytest.raises(ValueError, match="empty"):
            WorkloadSpec(name="none", entries=())

    def test_zero_weight(self):
        with pytest.raises(ValueError, match="non-positive"):
            WorkloadSpec(name="z", entries=(("resnet50", 0.0),))

    def test_negative_weight(self):
        with pytest.raises(ValueError, match="non-positive"):
            WorkloadSpec(name="n", entries=(("resnet50", 2.0),
                                            ("googlenet", -0.5),))

    def test_models_preserve_entry_order(self):
        spec = WorkloadSpec(name="o", entries=(("b", 1.0), ("a", 2.0)))
        assert spec.models == ["b", "a"]


class TestPoissonDeterminism:
    def test_identical_streams_under_fixed_seed(self, light_stack):
        spec = WorkloadSpec(name="mix", entries=(("mobilenet_v2", 1.0),
                                                 ("googlenet", 3.0)))
        first = poisson_queries(light_stack.compiled, spec, 120, 300,
                                seed=17)
        second = poisson_queries(light_stack.compiled, spec, 120, 300,
                                 seed=17)
        assert [q.arrival_s for q in first] == [q.arrival_s
                                               for q in second]
        assert [q.model.name for q in first] == [q.model.name
                                                 for q in second]
        assert [q.qos_s for q in first] == [q.qos_s for q in second]

    def test_seed_changes_both_gaps_and_choices(self, light_stack):
        spec = WorkloadSpec(name="mix", entries=(("mobilenet_v2", 1.0),
                                                 ("googlenet", 1.0)))
        first = poisson_queries(light_stack.compiled, spec, 120, 300,
                                seed=17)
        other = poisson_queries(light_stack.compiled, spec, 120, 300,
                                seed=18)
        assert [q.arrival_s for q in first] != [q.arrival_s
                                                for q in other]
        assert [q.model.name for q in first] != [q.model.name
                                                 for q in other]

    def test_rejects_nonpositive_count(self, light_stack):
        spec = WorkloadSpec(name="m", entries=(("mobilenet_v2", 1.0),))
        with pytest.raises(ValueError):
            poisson_queries(light_stack.compiled, spec, 100, 0)

    def test_uniform_rejects_bad_args(self, light_stack):
        with pytest.raises(ValueError):
            uniform_queries(light_stack.compiled, "mobilenet_v2", 0, 5)
        with pytest.raises(ValueError):
            uniform_queries(light_stack.compiled, "mobilenet_v2", 50, -1)


class TestInverseQosMixture:
    def test_weights_are_exact_inverse_qos(self):
        spec = full_mix()
        weights = dict(spec.entries)
        assert set(weights) == set(model_names())
        for name, weight in weights.items():
            assert weight == pytest.approx(1.0 / get_entry(name).qos_ms)

    def test_probabilities_sum_to_one(self):
        probabilities = full_mix().probabilities()
        assert probabilities.sum() == pytest.approx(1.0)
        assert np.all(probabilities > 0)

    def test_probability_ratio_matches_qos_ratio(self):
        spec = full_mix()
        probabilities = dict(zip(spec.models, spec.probabilities()))
        # mobilenet (10 ms) must be exactly 13x likelier than BERT
        # (130 ms): frequency inversely proportional to the QoS target.
        ratio = probabilities["mobilenet_v2"] / probabilities["bert_large"]
        assert ratio == pytest.approx(130.0 / 10.0)

    def test_draw_frequencies_track_weights(self, light_stack):
        spec = WorkloadSpec(name="m", entries=(("mobilenet_v2", 3.0),
                                               ("googlenet", 1.0)))
        queries = poisson_queries(light_stack.compiled, spec, 200, 2000,
                                  seed=5)
        share = (sum(1 for q in queries if q.model.name == "mobilenet_v2")
                 / len(queries))
        assert share == pytest.approx(0.75, abs=0.05)
