"""Core allocator and discrete-event engine tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.allocator import AllocationError, CoreAllocator
from repro.runtime.engine import Engine
from repro.runtime.tasks import block_duration
from repro.serving.workload import uniform_queries


class TestAllocator:
    def test_grant_and_release(self):
        alloc = CoreAllocator(8)
        alloc.allocate(1, 5)
        assert alloc.available == 3
        assert alloc.release(1) == 5
        assert alloc.available == 8

    def test_over_allocation_rejected(self):
        alloc = CoreAllocator(8)
        alloc.allocate(1, 5)
        with pytest.raises(AllocationError):
            alloc.allocate(2, 4)

    def test_double_allocation_rejected(self):
        alloc = CoreAllocator(8)
        alloc.allocate(1, 2)
        with pytest.raises(AllocationError):
            alloc.allocate(1, 2)

    def test_grow(self):
        alloc = CoreAllocator(8)
        alloc.allocate(1, 2)
        alloc.grow(1, 3)
        assert alloc.held_by(1) == 5

    def test_grow_unknown_holder_rejected(self):
        alloc = CoreAllocator(8)
        with pytest.raises(AllocationError):
            alloc.grow(1, 1)

    def test_release_unknown_holder_rejected(self):
        alloc = CoreAllocator(8)
        with pytest.raises(AllocationError):
            alloc.release(7)

    def test_rejects_zero_total(self):
        with pytest.raises(ValueError):
            CoreAllocator(0)

    @given(st.lists(st.tuples(st.sampled_from(["alloc", "grow", "release"]),
                              st.integers(1, 5), st.integers(1, 16)),
                    max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_invariant_never_exceeds_total(self, ops):
        alloc = CoreAllocator(16)
        for op, holder, cores in ops:
            try:
                if op == "alloc":
                    alloc.allocate(holder, cores)
                elif op == "grow":
                    alloc.grow(holder, cores)
                else:
                    alloc.release(holder)
            except AllocationError:
                pass
            assert 0 <= alloc.used <= 16
            assert alloc.available == 16 - alloc.used


class _WholeModelScheduler:
    """Minimal policy for engine tests: whole model, fixed cores."""

    def __init__(self, stack, cores):
        self.stack = stack
        self.cores = cores

    def schedule(self, engine):
        for queue in (engine.ready, engine.waiting):
            while queue and engine.allocator.available >= self.cores:
                query = queue.popleft()
                profile = self.stack.profiles[query.model.name]
                engine.start_block(
                    query, len(query.model.layers), self.cores,
                    profile.static_versions)


class TestBlockDuration:
    def test_rejects_bad_range(self, resnet_stack):
        queries = uniform_queries(resnet_stack.compiled, "resnet50", 10, 1)
        with pytest.raises(ValueError):
            block_duration(resnet_stack.cost_model, queries[0], 5, 5,
                           (), 8, 0.0)

    def test_rejects_version_mismatch(self, resnet_stack):
        queries = uniform_queries(resnet_stack.compiled, "resnet50", 10, 1)
        profile = resnet_stack.profiles["resnet50"]
        with pytest.raises(ValueError):
            block_duration(resnet_stack.cost_model, queries[0], 0, 3,
                           profile.static_versions[0:2], 8, 0.0)

    def test_block_slower_under_interference(self, resnet_stack):
        queries = uniform_queries(resnet_stack.compiled, "resnet50", 10, 1)
        profile = resnet_stack.profiles["resnet50"]
        versions = profile.static_versions[0:5]
        quiet = block_duration(resnet_stack.cost_model, queries[0], 0, 5,
                               versions, 16, 0.0)
        noisy = block_duration(resnet_stack.cost_model, queries[0], 0, 5,
                               versions, 16, 0.9)
        assert noisy > quiet


class TestEngine:
    def test_single_query_completes(self, resnet_stack):
        queries = uniform_queries(resnet_stack.compiled, "resnet50", 10, 1)
        engine = Engine(resnet_stack.cost_model)
        done = engine.run(queries, _WholeModelScheduler(resnet_stack, 32))
        assert len(done) == 1
        assert done[0].finished_s > done[0].arrival_s

    def test_all_queries_complete(self, resnet_stack):
        queries = uniform_queries(resnet_stack.compiled, "resnet50", 50, 20)
        engine = Engine(resnet_stack.cost_model)
        done = engine.run(queries, _WholeModelScheduler(resnet_stack, 16))
        assert len(done) == 20
        assert all(q.done for q in done)

    def test_time_monotonic_completion(self, resnet_stack):
        queries = uniform_queries(resnet_stack.compiled, "resnet50", 50, 15)
        engine = Engine(resnet_stack.cost_model)
        done = engine.run(queries, _WholeModelScheduler(resnet_stack, 16))
        finishes = [q.finished_s for q in done]
        assert finishes == sorted(finishes)

    def test_colocated_slower_than_solo(self, resnet_stack):
        solo = uniform_queries(resnet_stack.compiled, "resnet50", 1, 1)
        engine = Engine(resnet_stack.cost_model)
        solo_done = engine.run(solo, _WholeModelScheduler(resnet_stack, 16))
        solo_latency = solo_done[0].latency_s

        # Simultaneous arrivals: three 16-core tenants co-run.
        burst = uniform_queries(resnet_stack.compiled, "resnet50", 1000, 3)
        engine = Engine(resnet_stack.cost_model)
        busy_done = engine.run(burst, _WholeModelScheduler(resnet_stack, 16))
        assert max(q.latency_s for q in busy_done) > solo_latency

    def test_core_accounting(self, resnet_stack):
        queries = uniform_queries(resnet_stack.compiled, "resnet50", 50, 5)
        engine = Engine(resnet_stack.cost_model)
        done = engine.run(queries, _WholeModelScheduler(resnet_stack, 16))
        assert engine.allocator.used == 0
        assert engine.metrics.max_cores_used <= resnet_stack.cpu.cores
        assert engine.metrics.usage_core_seconds > 0
        for query in done:
            assert query.core_seconds > 0

    def test_pressure_zero_when_idle(self, resnet_stack):
        engine = Engine(resnet_stack.cost_model)
        assert engine.pressure() == 0.0
        assert engine.system_counters() == (0.0, 0.0)

    def test_grow_block(self, resnet_stack):
        queries = uniform_queries(resnet_stack.compiled, "resnet50", 10, 1)
        engine = Engine(resnet_stack.cost_model)

        class GrowOnce:
            def __init__(self, stack):
                self.stack = stack
                self.grown = False

            def schedule(self, engine):
                while engine.waiting:
                    query = engine.waiting.popleft()
                    profile = self.stack.profiles[query.model.name]
                    engine.start_block(query, len(query.model.layers), 8,
                                       profile.static_versions,
                                       desired_cores=24)
                if engine.running and not self.grown:
                    task_id = next(iter(engine.running))
                    engine.grow_block(task_id, 16)
                    self.grown = True

        done = engine.run(queries, GrowOnce(resnet_stack))
        assert len(done) == 1
        assert done[0].grows == 1
        assert engine.metrics.conflicts == 1

    def test_query_latency_requires_completion(self, resnet_stack):
        queries = uniform_queries(resnet_stack.compiled, "resnet50", 10, 1)
        with pytest.raises(ValueError):
            _ = queries[0].latency_s

    def test_deadlock_detected(self, resnet_stack):
        class NeverStarts:
            def schedule(self, engine):
                return

        queries = uniform_queries(resnet_stack.compiled, "resnet50", 10, 1)
        engine = Engine(resnet_stack.cost_model)
        with pytest.raises(RuntimeError, match="deadlock"):
            engine.run(queries, NeverStarts())

    def test_rejects_bad_pressure_quantum(self, resnet_stack):
        with pytest.raises(ValueError):
            Engine(resnet_stack.cost_model, pressure_quantum=0.0)

    def test_deadlock_detected_behind_stale_events(self, resnet_stack):
        """The guard must not be fooled by a heap of stale events.

        The first query's block is grown mid-flight, so its re-priced
        finish fires *before* the original (now stale) event; the
        second query is never started.  The stale tail used to let the
        drain loop slide past the deadlock guard and return silently.
        """
        class StartsOnlyFirst:
            def __init__(self, stack):
                self.stack = stack
                self.started = False
                self.grown = False

            def schedule(self, engine):
                profile = self.stack.profiles["resnet50"]
                if not self.started and engine.waiting:
                    query = engine.waiting.popleft()
                    engine.start_block(query, len(query.model.layers),
                                       8, profile.static_versions,
                                       desired_cores=32)
                    self.started = True
                elif self.started and not self.grown and engine.running:
                    engine.grow_block(next(iter(engine.running)), 24)
                    self.grown = True

        queries = uniform_queries(resnet_stack.compiled, "resnet50",
                                  100, 2)
        engine = Engine(resnet_stack.cost_model)
        with pytest.raises(RuntimeError, match="deadlock"):
            engine.run(queries, StartsOnlyFirst(resnet_stack))


def _start_one_block(stack, engine, cores=8, desired=None):
    """Start one whole-model block directly (engine-internals tests)."""
    query = uniform_queries(stack.compiled, "resnet50", 10, 1)[0]
    profile = stack.profiles["resnet50"]
    return engine.start_block(query, len(query.model.layers), cores,
                              profile.static_versions,
                              desired_cores=desired)


class TestGrowOverheadClamp:
    """Regression: a grow on a just-started block must not drive its
    progress negative (negative progress overstates remaining work and
    yields an overlong finish time)."""

    def test_progress_clamped_at_zero(self, resnet_stack):
        engine = Engine(resnet_stack.cost_model)
        task_id = _start_one_block(resnet_stack, engine, cores=8,
                                   desired=32)
        # Grow immediately: zero banked progress, but the spawn overhead
        # charge is positive — without the clamp this went negative.
        engine.grow_block(task_id, 24)
        engine._reprice_dirty()
        block = engine.running[task_id]
        assert block.progress == 0.0
        assert block.pending_overhead_s == 0.0

    def test_finish_not_overlong(self, resnet_stack):
        engine = Engine(resnet_stack.cost_model)
        task_id = _start_one_block(resnet_stack, engine, cores=8,
                                   desired=32)
        engine.grow_block(task_id, 24)
        engine._reprice_dirty()
        block = engine.running[task_id]
        # The scheduled finish can be at most one full block duration
        # out, since clamped progress is >= 0.
        finish_times = [event[0] for event in engine._events
                        if event[2] == "finish"
                        and event[3] == (task_id, block.generation)]
        assert finish_times
        assert finish_times[0] <= engine.now + 1.0 / block.rate + 1e-12


class TestHorizonAccounting:
    """Regression: stopping at a horizon must account the tail of the
    simulated window, not freeze the clock at the last event."""

    def test_tail_advanced_to_horizon(self, resnet_stack):
        queries = uniform_queries(resnet_stack.compiled, "resnet50",
                                  100, 5)  # arrivals at 10ms spacing
        engine = Engine(resnet_stack.cost_model)
        horizon = 0.012  # mid-flight of the first query's block
        engine.run(queries, _WholeModelScheduler(resnet_stack, 32),
                   horizon_s=horizon)
        assert engine.metrics.last_event_s == pytest.approx(horizon)
        # The first block runs on 32 cores from t=0.01 to the horizon.
        assert engine.metrics.usage_core_seconds == pytest.approx(
            32 * (horizon - 0.01))

    def test_average_cores_not_inflated(self, resnet_stack):
        queries = uniform_queries(resnet_stack.compiled, "resnet50",
                                  100, 5)
        engine = Engine(resnet_stack.cost_model)
        engine.run(queries, _WholeModelScheduler(resnet_stack, 32),
                   horizon_s=0.012)
        # 32 cores busy over half the [0.01, 0.012] window span would be
        # reported as 32; the under-count bug reported 0-span inf/garbage.
        assert 0.0 < engine.metrics.average_cores_used <= 32.0

    def test_horizon_before_first_event(self, resnet_stack):
        queries = uniform_queries(resnet_stack.compiled, "resnet50",
                                  100, 5)
        engine = Engine(resnet_stack.cost_model)
        done = engine.run(queries, _WholeModelScheduler(resnet_stack, 32),
                          horizon_s=0.001)
        assert done == []
        assert engine.metrics.first_event_s is None
        assert engine.metrics.usage_core_seconds == 0.0


class TestPlanningPressureBoundary:
    """Paper Sec. 4.3: a block exactly at the soon-to-finish threshold
    counts as soon-to-finish (inclusive boundary)."""

    def test_at_threshold_excluded(self, resnet_stack):
        engine = Engine(resnet_stack.cost_model,
                        soon_to_finish_threshold=0.25)
        task_id = _start_one_block(resnet_stack, engine)
        block = engine.running[task_id]
        block.progress = 0.75  # remaining == threshold exactly
        assert engine.pressure(planning=True) == 0.0
        assert engine.pressure() > 0.0  # non-planning still counts it

    def test_below_threshold_excluded(self, resnet_stack):
        engine = Engine(resnet_stack.cost_model,
                        soon_to_finish_threshold=0.25)
        task_id = _start_one_block(resnet_stack, engine)
        engine.running[task_id].progress = 0.875
        assert engine.pressure(planning=True) == 0.0

    def test_above_threshold_included(self, resnet_stack):
        engine = Engine(resnet_stack.cost_model,
                        soon_to_finish_threshold=0.25)
        task_id = _start_one_block(resnet_stack, engine)
        engine.running[task_id].progress = 0.5
        assert engine.pressure(planning=True) > 0.0
